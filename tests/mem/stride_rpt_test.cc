/**
 * @file
 * Tests for the Reference Prediction Table (stride detector).
 */

#include <gtest/gtest.h>

#include "mem/stride_rpt.hh"

namespace vrsim
{
namespace
{

TEST(StrideRptTest, DetectsConstantStride)
{
    StrideRpt rpt(8, 2);
    rpt.reset();
    for (int i = 0; i < 4; i++)
        rpt.train(0x10, 0x1000 + i * 8);
    const RptEntry *e = rpt.predict(0x10);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->stride, 8);
    EXPECT_TRUE(rpt.isStriding(0x10));
}

TEST(StrideRptTest, NeedsConfidenceBeforePredicting)
{
    StrideRpt rpt(8, 2);
    rpt.reset();
    rpt.train(0x10, 0x1000);
    rpt.train(0x10, 0x1008);   // first stride observation: conf 0->?
    EXPECT_EQ(rpt.predict(0x10), nullptr);
    rpt.train(0x10, 0x1010);
    rpt.train(0x10, 0x1018);
    EXPECT_NE(rpt.predict(0x10), nullptr);
}

TEST(StrideRptTest, RandomAddressesNeverPredict)
{
    StrideRpt rpt(8, 2);
    rpt.reset();
    uint64_t addrs[] = {0x9231, 0x11, 0x772210, 0x40, 0x99999};
    for (uint64_t a : addrs)
        rpt.train(0x20, a);
    EXPECT_EQ(rpt.predict(0x20), nullptr);
}

TEST(StrideRptTest, StrideChangeDropsConfidence)
{
    StrideRpt rpt(8, 2);
    rpt.reset();
    for (int i = 0; i < 5; i++)
        rpt.train(0x30, 0x1000 + i * 8);
    ASSERT_NE(rpt.predict(0x30), nullptr);
    rpt.train(0x30, 0x5000);       // break the pattern
    rpt.train(0x30, 0x9000);
    EXPECT_EQ(rpt.predict(0x30), nullptr);
}

TEST(StrideRptTest, NegativeStridesSupported)
{
    StrideRpt rpt(8, 2);
    rpt.reset();
    for (int i = 0; i < 4; i++)
        rpt.train(0x40, 0x9000 - i * 16);
    const RptEntry *e = rpt.predict(0x40);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->stride, -16);
}

TEST(StrideRptTest, ZeroStrideNeverPredicts)
{
    StrideRpt rpt(8, 2);
    rpt.reset();
    for (int i = 0; i < 6; i++)
        rpt.train(0x50, 0x2000);
    EXPECT_EQ(rpt.predict(0x50), nullptr);
}

TEST(StrideRptTest, LruEvictionUnderCapacity)
{
    StrideRpt rpt(2, 2);
    rpt.reset();
    for (int i = 0; i < 4; i++) {
        rpt.train(0x1, 0x100 + i * 8);
        rpt.train(0x2, 0x200 + i * 8);
    }
    ASSERT_NE(rpt.predict(0x1), nullptr);
    // A third PC evicts the LRU entry (0x1, trained longest ago).
    rpt.train(0x3, 0x300);
    EXPECT_EQ(rpt.find(0x1), nullptr);
    EXPECT_NE(rpt.find(0x2), nullptr);
    EXPECT_NE(rpt.find(0x3), nullptr);
}

TEST(StrideRptTest, InnermostBitPersists)
{
    StrideRpt rpt(8, 2);
    rpt.reset();
    for (int i = 0; i < 4; i++)
        rpt.train(0x60, 0x100 + i * 8);
    rpt.find(0x60)->innermost = true;
    rpt.train(0x60, 0x100 + 4 * 8);
    EXPECT_TRUE(rpt.find(0x60)->innermost);
}

TEST(StrideRptTest, MultipleStreamsTrackedIndependently)
{
    StrideRpt rpt(8, 2);
    rpt.reset();
    for (int i = 0; i < 5; i++) {
        rpt.train(0x70, 0x1000 + i * 8);
        rpt.train(0x71, 0x8000 + i * 64);
    }
    EXPECT_EQ(rpt.predict(0x70)->stride, 8);
    EXPECT_EQ(rpt.predict(0x71)->stride, 64);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for the capacity-over-time calendar that underlies the MSHR
 * banks and the DRAM channel.
 */

#include <gtest/gtest.h>

#include "mem/interval_resource.hh"

namespace vrsim
{
namespace
{

TEST(IntervalResourceTest, AllocatesAtRequestWhenFree)
{
    IntervalResource r(2, 0);
    EXPECT_EQ(r.allocate(10, 5), 10u);
    EXPECT_EQ(r.allocations(), 1u);
}

TEST(IntervalResourceTest, CapacityEnforcedWithinBucket)
{
    IntervalResource r(2, 0);
    r.allocate(0, 4);
    r.allocate(0, 4);
    Cycle third = r.allocate(0, 4);
    EXPECT_GE(third, 4u);   // must wait for a slot
    EXPECT_EQ(r.stalls(), 1u);
}

TEST(IntervalResourceTest, PastReservationsPossibleAfterFutureOnes)
{
    // The regression behind the Fig-9 blowup: reserving far in the
    // future must not affect earlier windows.
    IntervalResource r(1, 0);
    EXPECT_EQ(r.allocate(1000000, 5), 1000000u);
    EXPECT_EQ(r.allocate(10, 5), 10u);
    EXPECT_EQ(r.allocate(0, 5), 0u);
}

TEST(IntervalResourceTest, BusyAtCountsOverlaps)
{
    IntervalResource r(4, 0);
    r.allocate(100, 10);
    r.allocate(105, 10);
    EXPECT_EQ(r.busyAt(107), 2u);
    EXPECT_EQ(r.busyAt(99), 0u);
    EXPECT_EQ(r.busyAt(120), 0u);
}

TEST(IntervalResourceTest, BusyIntegralSumsDurations)
{
    IntervalResource r(4, 2);
    r.allocate(0, 100);
    r.allocate(50, 25);
    EXPECT_EQ(r.busyIntegral(), 125u);
}

TEST(IntervalResourceTest, ZeroDurationTreatedAsOne)
{
    IntervalResource r(1, 0);
    EXPECT_EQ(r.allocate(5, 0), 5u);
    // The slot at 5 is now occupied.
    EXPECT_EQ(r.allocate(5, 0), 6u);
}

TEST(IntervalResourceTest, BucketedGranularityIsConservative)
{
    // With 8-cycle buckets, two 1-cycle uses in the same bucket both
    // count against the bucket's capacity.
    IntervalResource r(1, 3);
    r.allocate(0, 1);
    Cycle second = r.allocate(3, 1);
    EXPECT_GE(second, 8u);   // pushed to the next bucket
}

TEST(IntervalResourceTest, SustainedOverloadQueuesLinearly)
{
    IntervalResource r(2, 0);
    Cycle last = 0;
    for (int i = 0; i < 100; i++)
        last = r.allocate(0, 10);
    // 100 requests of 10 cycles at capacity 2: last start ~ 490.
    EXPECT_NEAR(double(last), 490.0, 15.0);
}

TEST(IntervalResourceTest, ResetClearsState)
{
    IntervalResource r(1, 0);
    r.allocate(0, 10);
    r.reset();
    EXPECT_EQ(r.allocate(0, 10), 0u);
    EXPECT_EQ(r.busyIntegral(), 10u);
}

TEST(IntervalResourceTest, ZeroCapacityPanics)
{
    EXPECT_THROW(IntervalResource(0, 0), PanicError);
}

} // namespace
} // namespace vrsim

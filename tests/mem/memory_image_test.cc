/**
 * @file
 * Tests for the sparse functional memory image.
 */

#include <gtest/gtest.h>

#include "isa/memory_image.hh"

namespace vrsim
{
namespace
{

TEST(MemoryImageTest, UnbackedReadsZero)
{
    MemoryImage m;
    EXPECT_EQ(m.read64(0xDEADBEEF000), 0u);
    EXPECT_EQ(m.read32(0x123456), 0u);
    EXPECT_EQ(m.residentPages(), 0u);
}

TEST(MemoryImageTest, RoundTrip64)
{
    MemoryImage m;
    m.write64(0x1000, 0x0123456789ABCDEFull);
    EXPECT_EQ(m.read64(0x1000), 0x0123456789ABCDEFull);
}

TEST(MemoryImageTest, RoundTrip32AndEndianOverlap)
{
    MemoryImage m;
    m.write64(0x2000, 0x1122334455667788ull);
    EXPECT_EQ(m.read32(0x2000), 0x55667788u);   // little endian
    EXPECT_EQ(m.read32(0x2004), 0x11223344u);
    m.write32(0x2000, 0xAABBCCDDu);
    EXPECT_EQ(m.read64(0x2000), 0x11223344AABBCCDDull);
}

TEST(MemoryImageTest, CrossPageAccess)
{
    MemoryImage m;
    uint64_t boundary = MemoryImage::PAGE_SIZE - 4;
    m.write64(boundary, 0xCAFEBABE12345678ull);
    EXPECT_EQ(m.read64(boundary), 0xCAFEBABE12345678ull);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(MemoryImageTest, FloatRoundTrip)
{
    MemoryImage m;
    m.writeF64(0x3000, 3.14159);
    EXPECT_DOUBLE_EQ(m.readF64(0x3000), 3.14159);
    m.writeF64(0x3008, -0.0);
    EXPECT_DOUBLE_EQ(m.readF64(0x3008), -0.0);
}

TEST(MemoryImageTest, SparseFootprintTracksPages)
{
    MemoryImage m;
    m.write64(0, 1);
    m.write64(10 * MemoryImage::PAGE_SIZE, 1);
    EXPECT_EQ(m.residentPages(), 2u);
    EXPECT_EQ(m.footprintBytes(), 2 * MemoryImage::PAGE_SIZE);
}

TEST(MemoryImageTest, HighAddressesWork)
{
    MemoryImage m;
    uint64_t addr = 0xFFFF'FFFF'0000ull;
    m.write64(addr, 42);
    EXPECT_EQ(m.read64(addr), 42u);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Unit tests for the tag-only cache array and the MSHR bank.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace vrsim
{
namespace
{

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 64B lines = 512 B.
    CacheConfig cfg;
    cfg.size_bytes = 512;
    cfg.assoc = 2;
    cfg.line_bytes = 64;
    cfg.latency = 4;
    return cfg;
}

TEST(CacheArrayTest, MissThenHit)
{
    CacheArray c("t", smallCache());
    EXPECT_EQ(c.lookup(1, 0), nullptr);
    c.insert(1, 0, 10, Requester::Demand);
    auto *l = c.lookup(1, 5);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->fill_time, 10u);
}

TEST(CacheArrayTest, LruEvictsLeastRecentlyUsed)
{
    CacheArray c("t", smallCache());
    // Lines 0, 4, 8 map to set 0 (4 sets).
    c.insert(0, 1, 1, Requester::Demand);
    c.insert(4, 2, 2, Requester::Demand);
    c.lookup(0, 3);   // touch 0: 4 is now LRU
    auto ev = c.insert(8, 4, 4, Requester::Demand);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->tag, 4u);
    EXPECT_NE(c.peek(0), nullptr);
    EXPECT_EQ(c.peek(4), nullptr);
    EXPECT_NE(c.peek(8), nullptr);
}

TEST(CacheArrayTest, ReinsertKeepsEarliestFill)
{
    CacheArray c("t", smallCache());
    c.insert(7, 0, 100, Requester::Demand);
    auto ev = c.insert(7, 1, 50, Requester::Demand);
    EXPECT_FALSE(ev.has_value());
    EXPECT_EQ(c.peek(7)->fill_time, 50u);
}

TEST(CacheArrayTest, InvalidateRemovesLine)
{
    CacheArray c("t", smallCache());
    c.insert(3, 0, 0, Requester::Demand);
    c.invalidate(3);
    EXPECT_EQ(c.peek(3), nullptr);
    c.invalidate(3);   // idempotent
}

TEST(CacheArrayTest, PeekDoesNotTouchLru)
{
    CacheArray c("t", smallCache());
    c.insert(0, 1, 1, Requester::Demand);
    c.insert(4, 2, 2, Requester::Demand);
    c.peek(0);   // must NOT refresh 0
    auto ev = c.insert(8, 3, 3, Requester::Demand);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->tag, 0u);   // 0 was still LRU
}

TEST(CacheArrayTest, OriginAndUsedTracking)
{
    CacheArray c("t", smallCache());
    c.insert(2, 0, 0, Requester::Runahead);
    auto *l = c.lookup(2, 1);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->origin, Requester::Runahead);
    EXPECT_FALSE(l->used_since_fill);
}

TEST(CacheArrayTest, LineAddrMapping)
{
    CacheArray c("t", smallCache());
    EXPECT_EQ(c.lineAddr(0), 0u);
    EXPECT_EQ(c.lineAddr(63), 0u);
    EXPECT_EQ(c.lineAddr(64), 1u);
    EXPECT_EQ(c.lineBytes(), 64u);
}

TEST(CacheArrayTest, BadGeometryPanics)
{
    CacheConfig cfg = smallCache();
    cfg.size_bytes = 64;
    cfg.assoc = 4;   // smaller than one set
    EXPECT_THROW(CacheArray("bad", cfg), PanicError);
}

TEST(MshrBankTest, ImmediateAllocationWhenFree)
{
    MshrBank bank(4);
    Cycle fill = 0;
    Cycle issue = bank.allocate(100, 200, fill);
    EXPECT_EQ(issue, 100u);
    EXPECT_EQ(fill, 300u);
    EXPECT_EQ(bank.allocations(), 1u);
    EXPECT_EQ(bank.stalls(), 0u);
}

TEST(MshrBankTest, SaturationDelaysAllocation)
{
    MshrBank bank(2);
    Cycle fill = 0;
    bank.allocate(0, 100, fill);
    bank.allocate(0, 100, fill);
    // Third concurrent miss must wait for a register.
    Cycle issue = bank.allocate(0, 100, fill);
    EXPECT_GT(issue, 0u);
    EXPECT_GE(bank.stalls(), 1u);
}

TEST(MshrBankTest, NonChronologicalAllocationsDoNotBlockPast)
{
    // The regression that motivated IntervalResource: a reservation
    // far in the future must not delay an earlier one.
    MshrBank bank(2);
    Cycle fill = 0;
    bank.allocate(100000, 200, fill);
    Cycle issue = bank.allocate(10, 200, fill);
    EXPECT_EQ(issue, 10u);
}

TEST(MshrBankTest, BusyIntegralAccumulates)
{
    MshrBank bank(8);
    Cycle fill = 0;
    bank.allocate(0, 100, fill);
    bank.allocate(0, 50, fill);
    EXPECT_EQ(bank.busyIntegral(), 150u);
    bank.reset();
    EXPECT_EQ(bank.busyIntegral(), 0u);
}

TEST(MshrBankTest, BusyAtReflectsOutstanding)
{
    MshrBank bank(8);
    Cycle fill = 0;
    bank.allocate(0, 100, fill);
    bank.allocate(0, 100, fill);
    EXPECT_EQ(bank.busyAt(50), 2u);
    EXPECT_EQ(bank.busyAt(1000), 0u);
}

TEST(CacheReplTest, FifoIgnoresHits)
{
    CacheConfig cfg = smallCache();
    cfg.repl = ReplPolicy::Fifo;
    CacheArray c("t", cfg);
    c.insert(0, 1, 1, Requester::Demand);
    c.insert(4, 2, 2, Requester::Demand);
    c.lookup(0, 3);   // FIFO: must NOT refresh line 0
    auto ev = c.insert(8, 4, 4, Requester::Demand);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->tag, 0u);   // oldest insertion evicted despite hit
}

TEST(CacheReplTest, RandomEvictsSomeValidWay)
{
    CacheConfig cfg = smallCache();
    cfg.repl = ReplPolicy::Random;
    CacheArray c("t", cfg);
    c.insert(0, 1, 1, Requester::Demand);
    c.insert(4, 2, 2, Requester::Demand);
    auto ev = c.insert(8, 3, 3, Requester::Demand);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->tag == 0u || ev->tag == 4u);
    // The new line is resident either way.
    EXPECT_NE(c.peek(8), nullptr);
}

TEST(CacheReplTest, PoliciesFillInvalidWaysFirst)
{
    for (ReplPolicy p : {ReplPolicy::Lru, ReplPolicy::Fifo,
                         ReplPolicy::Random}) {
        CacheConfig cfg = smallCache();
        cfg.repl = p;
        CacheArray c("t", cfg);
        EXPECT_FALSE(c.insert(0, 1, 1, Requester::Demand).has_value());
        EXPECT_FALSE(c.insert(4, 2, 2, Requester::Demand).has_value());
    }
}

} // namespace
} // namespace vrsim

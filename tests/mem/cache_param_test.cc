/**
 * @file
 * Parameterized property tests for the cache array and MSHR bank over
 * geometry sweeps.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "sim/rng.hh"

namespace vrsim
{
namespace
{

/** (size_bytes, assoc) sweep. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
  protected:
    CacheConfig
    cfg() const
    {
        auto [size, assoc] = GetParam();
        CacheConfig c;
        c.size_bytes = size;
        c.assoc = assoc;
        c.line_bytes = 64;
        return c;
    }
};

TEST_P(CacheGeometry, CapacityHoldsWithoutEviction)
{
    CacheConfig c = cfg();
    CacheArray cache("t", c);
    const uint32_t lines = c.size_bytes / c.line_bytes;
    // One line per set slot, touching each set `assoc` times.
    uint64_t evictions = 0;
    for (uint32_t i = 0; i < lines; i++)
        if (cache.insert(i, i, i, Requester::Demand))
            ++evictions;
    EXPECT_EQ(evictions, 0u);
    // Everything must still be resident.
    for (uint32_t i = 0; i < lines; i++)
        EXPECT_NE(cache.peek(i), nullptr) << i;
}

TEST_P(CacheGeometry, OverCapacityEvictsExactlyOverflow)
{
    CacheConfig c = cfg();
    CacheArray cache("t", c);
    const uint32_t lines = c.size_bytes / c.line_bytes;
    uint64_t evictions = 0;
    for (uint32_t i = 0; i < 2 * lines; i++)
        if (cache.insert(i, i, i, Requester::Demand))
            ++evictions;
    EXPECT_EQ(evictions, lines);
}

TEST_P(CacheGeometry, LookupAfterRandomChurnIsConsistent)
{
    CacheConfig c = cfg();
    CacheArray cache("t", c);
    Rng rng(7);
    // Model: a map of the most recent `assoc` inserts per set must
    // all be present (LRU can only evict older ones).
    const uint32_t sets = cache.numSets();
    std::vector<std::vector<uint64_t>> recent(sets);
    for (int i = 0; i < 10000; i++) {
        uint64_t line = rng.below(16 * sets);
        cache.insert(line, Cycle(i), Cycle(i), Requester::Demand);
        auto &r = recent[line % sets];
        auto it = std::find(r.begin(), r.end(), line);
        if (it != r.end())
            r.erase(it);
        r.push_back(line);
        if (r.size() > c.assoc)
            r.erase(r.begin());
    }
    for (uint32_t s = 0; s < sets; s++)
        for (uint64_t line : recent[s])
            EXPECT_NE(cache.peek(line), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(4u * 1024, 32u * 1024,
                                         256u * 1024),
                       ::testing::Values(1u, 2u, 8u, 16u)),
    [](const auto &info) {
        return std::to_string(std::get<0>(info.param) / 1024) + "KB_" +
               std::to_string(std::get<1>(info.param)) + "way";
    });

/** MSHR-bank capacity sweep: sustained throughput is bounded. */
class MshrCapacity : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(MshrCapacity, ThroughputBoundedByCapacityOverLatency)
{
    const uint32_t entries = GetParam();
    MshrBank bank(entries);
    const Cycle latency = 240;
    const int n = 500;
    Cycle fill = 0, last_issue = 0;
    for (int i = 0; i < n; i++)
        last_issue = bank.allocate(0, latency, fill);
    // n misses from time 0: finish no earlier than the bandwidth
    // bound (n / entries generations of `latency` cycles)...
    double generations = double(n) / double(entries);
    EXPECT_GE(double(last_issue) + 1.0, (generations - 1.5) * latency);
    // ...and the bank must not be pathologically slower than 2x it.
    EXPECT_LE(double(last_issue), (generations + 2.0) * latency * 2);
}

INSTANTIATE_TEST_SUITE_P(Capacities, MshrCapacity,
                         ::testing::Values(1u, 8u, 24u, 64u));

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for the DRAM latency/bandwidth model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace vrsim
{
namespace
{

TEST(DramTest, UncontendedLatency)
{
    DramConfig cfg;   // 200 cycles, 12.8 B/c
    DramModel dram(cfg, 64);
    EXPECT_EQ(dram.access(1000), 1200u);
    EXPECT_EQ(dram.accesses(), 1u);
    EXPECT_EQ(dram.queueDelay(), 0u);
}

TEST(DramTest, ServiceCyclesFromBandwidth)
{
    DramConfig cfg;
    cfg.bytes_per_cycle = 12.8;
    DramModel dram(cfg, 64);
    EXPECT_EQ(dram.serviceCycles(), 5u);   // 64 / 12.8
}

TEST(DramTest, BackToBackRequestsSerialize)
{
    DramConfig cfg;
    DramModel dram(cfg, 64);
    Cycle a = dram.access(0);
    Cycle b = dram.access(0);
    Cycle c = dram.access(0);
    EXPECT_EQ(a, 200u);
    EXPECT_EQ(b, 205u);   // queued one service slot
    EXPECT_EQ(c, 210u);
    EXPECT_EQ(dram.queueDelay(), 5u + 10u);
}

TEST(DramTest, SustainedBandwidthMatchesConfig)
{
    DramConfig cfg;
    DramModel dram(cfg, 64);
    Cycle last = 0;
    const int n = 1000;
    for (int i = 0; i < n; i++)
        last = dram.access(0);
    // n lines at 5 cycles each.
    EXPECT_NEAR(double(last - 200), 5.0 * (n - 1), 50.0);
}

TEST(DramTest, NonChronologicalRequestsDoNotBlockEarlierOnes)
{
    DramConfig cfg;
    DramModel dram(cfg, 64);
    dram.access(1000000);
    EXPECT_EQ(dram.access(100), 300u);
}

TEST(DramTest, SpreadRequestsSeeNoQueueing)
{
    DramConfig cfg;
    DramModel dram(cfg, 64);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(dram.access(Cycle(i) * 10), Cycle(i) * 10 + 200);
}

TEST(DramTest, ResetClearsChannel)
{
    DramConfig cfg;
    DramModel dram(cfg, 64);
    dram.access(0);
    dram.access(0);
    dram.reset();
    EXPECT_EQ(dram.access(0), 200u);
    EXPECT_EQ(dram.accesses(), 1u);
}

TEST(DramTest, ChannelsPreserveAggregateBandwidth)
{
    DramConfig one;
    DramConfig four = one;
    four.channels = 4;
    DramModel d1(one, 64), d4(four, 64);
    Cycle last1 = 0, last4 = 0;
    for (int i = 0; i < 400; i++) {
        last1 = d1.access(0);
        last4 = d4.access(0);
    }
    // Same total bandwidth: finishing times within ~10%.
    EXPECT_NEAR(double(last4), double(last1), 0.1 * double(last1));
}

TEST(DramTest, ChannelsReduceSmallBurstQueueing)
{
    DramConfig one;
    DramConfig four = one;
    four.channels = 4;
    DramModel d1(one, 64), d4(four, 64);
    // A 4-line burst: with 4 channels they all start immediately.
    Cycle worst1 = 0, worst4 = 0;
    for (int i = 0; i < 4; i++) {
        worst1 = std::max(worst1, d1.access(0));
        worst4 = std::max(worst4, d4.access(0));
    }
    EXPECT_LT(worst4, worst1);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for the Indirect Memory Prefetcher baseline: pattern
 * detection for B[A[i]]-style accesses and prefetch generation.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "mem/imp.hh"

namespace vrsim
{
namespace
{

class ImpTest : public ::testing::Test
{
  protected:
    ImpTest() : cfg(makeCfg()), hier(cfg, image)
    {
        hier.enableImp();
    }

    static SystemConfig
    makeCfg()
    {
        SystemConfig c = SystemConfig::paper();
        c.stride_pf.enabled = false;
        return c;
    }

    MemoryImage image;
    SystemConfig cfg;
    MemoryHierarchy hier;
};

TEST_F(ImpTest, DetectsSimpleIndirectPattern)
{
    // idx[i] at stride 8; data[idx[i]] with coeff 8 from base.
    const uint64_t idx_base = 0x10000;
    const uint64_t data_base = 0x800000;
    for (uint64_t i = 0; i < 64; i++)
        image.write64(idx_base + i * 8, (i * 37) % 512);

    Cycle t = 0;
    uint64_t late_indirect_misses = 0;
    for (uint64_t i = 0; i < 64; i++) {
        uint64_t v = image.read64(idx_base + i * 8);
        hier.access(idx_base + i * 8, 0x1, t, false,
                    Requester::Demand);
        AccessResult r = hier.access(data_base + v * 8, 0x2, t + 10,
                                     false, Requester::Demand);
        if (i > 40 && r.level == HitLevel::Memory)
            ++late_indirect_misses;
        t += 600;
    }
    // After warmup, indirect targets should be prefetched.
    EXPECT_LT(late_indirect_misses, 6u);
    EXPECT_GT(hier.stats().dram_by_requester[size_t(Requester::Imp)],
              0u);
}

TEST_F(ImpTest, NoPatternForUncorrelatedLoads)
{
    const uint64_t idx_base = 0x10000;
    for (uint64_t i = 0; i < 32; i++)
        image.write64(idx_base + i * 8, i * 1000);

    Cycle t = 0;
    for (uint64_t i = 0; i < 32; i++) {
        hier.access(idx_base + i * 8, 0x1, t, false,
                    Requester::Demand);
        // Unrelated address, not a function of the loaded value.
        hier.access(0x900000 + ((i * 7919) % 64) * 4096, 0x2, t + 10,
                    false, Requester::Demand);
        t += 600;
    }
    // IMP may try candidates but should issue few/no prefetches with
    // a stable verified pattern.
    EXPECT_LT(hier.stats().dram_by_requester[size_t(Requester::Imp)],
              8u);
}

TEST(ImpUnitTest, PatternTableDirect)
{
    MemoryImage image;
    SystemConfig cfg = SystemConfig::paper();
    MemoryHierarchy hier(cfg, image);
    ImpConfig icfg;
    ImpPrefetcher imp(icfg, hier, image);

    const uint64_t base = 0x40000;
    // Feed a perfect stride stream with values, and matching
    // indirect accesses at base + value * 8.
    for (uint64_t i = 0; i < 16; i++) {
        uint64_t value = 100 + i * 3;
        imp.observe(0xA, 0x1000 + i * 8, value, 8, i * 100);
        imp.observe(0xB, base + value * 8, 0, 8, i * 100 + 10);
    }
    EXPECT_GE(imp.patterns(), 1u);
    EXPECT_GT(imp.prefetchesIssued(), 0u);
}

} // namespace
} // namespace vrsim

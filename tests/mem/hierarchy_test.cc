/**
 * @file
 * Tests for the memory hierarchy: level latencies, inclusive
 * behaviour, MSHR merging, stride prefetching, runahead timeliness
 * accounting and DRAM attribution.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace vrsim
{
namespace
{

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest() : cfg(makeCfg()), hier(cfg, image) {}

    static SystemConfig
    makeCfg()
    {
        SystemConfig c = SystemConfig::paper();
        c.stride_pf.enabled = false;   // enable explicitly per test
        return c;
    }

    MemoryImage image;
    SystemConfig cfg;
    MemoryHierarchy hier;

    AccessResult
    load(uint64_t addr, Cycle cycle, Requester who = Requester::Demand,
         uint64_t pc = 0)
    {
        return hier.access(addr, pc, cycle, false, who);
    }
};

TEST_F(HierarchyTest, ColdMissPaysFullPath)
{
    AccessResult r = load(0x10000, 0);
    EXPECT_EQ(r.level, HitLevel::Memory);
    // l1 + l2 + l3 + dram = 4 + 8 + 30 + 200.
    EXPECT_EQ(r.latency, 242u);
}

TEST_F(HierarchyTest, SecondAccessHitsL1)
{
    load(0x10000, 0);
    AccessResult r = load(0x10000, 1000);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(r.latency, cfg.l1d.latency);
}

TEST_F(HierarchyTest, SameLineDifferentWordHits)
{
    load(0x10000, 0);
    AccessResult r = load(0x10038, 1000);   // same 64B line
    EXPECT_EQ(r.level, HitLevel::L1);
}

TEST_F(HierarchyTest, InFlightAccessMergesWithFill)
{
    load(0x10000, 0);
    AccessResult r = load(0x10000, 10);   // before fill at 242
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_TRUE(r.mshr_merged);
    EXPECT_EQ(r.latency, 242u - 10u);
}

TEST_F(HierarchyTest, L1EvictionLeavesL2Copy)
{
    // Fill enough distinct lines mapping everywhere to overflow the
    // 32 KB L1 (512 lines) but not the 256 KB L2.
    for (uint64_t i = 0; i < 1024; i++)
        load(0x100000 + i * 64, 10000 + i * 300);
    // The first line is gone from L1 but should hit in L2.
    AccessResult r = load(0x100000, 10000000);
    EXPECT_EQ(r.level, HitLevel::L2);
    EXPECT_EQ(r.latency, cfg.l1d.latency + cfg.l2.latency);
}

TEST_F(HierarchyTest, DemandStatsByLevel)
{
    load(0x20000, 0);
    load(0x20000, 1000);
    const MemStats &s = hier.stats();
    EXPECT_EQ(s.demand_accesses, 2u);
    EXPECT_EQ(s.demand_mem, 1u);
    EXPECT_EQ(s.demand_l1_hits, 1u);
}

TEST_F(HierarchyTest, DramAttributionByRequester)
{
    load(0x30000, 0, Requester::Demand);
    load(0x40000, 0, Requester::Runahead);
    load(0x50000, 0, Requester::StridePf);
    const MemStats &s = hier.stats();
    EXPECT_EQ(s.dram_by_requester[size_t(Requester::Demand)], 1u);
    EXPECT_EQ(s.dram_by_requester[size_t(Requester::Runahead)], 1u);
    EXPECT_EQ(s.dram_by_requester[size_t(Requester::StridePf)], 1u);
    EXPECT_EQ(s.dramTotal(), 3u);
}

TEST_F(HierarchyTest, RunaheadPrefetchTimelinessL1)
{
    // Prefetch a line, let it land, then demand-access it.
    load(0x60000, 0, Requester::Runahead);
    load(0x60000, 100000, Requester::Demand);
    const MemStats &s = hier.stats();
    EXPECT_EQ(s.pf_lines_filled, 1u);
    EXPECT_EQ(s.pf_used_l1, 1u);
    EXPECT_EQ(s.pf_used_inflight, 0u);
}

TEST_F(HierarchyTest, RunaheadPrefetchStillInFlightCountsOffChip)
{
    load(0x70000, 0, Requester::Runahead);
    load(0x70000, 50, Requester::Demand);   // fill is at 242
    const MemStats &s = hier.stats();
    EXPECT_EQ(s.pf_used_inflight, 1u);
    EXPECT_EQ(s.pf_used_l1, 0u);
}

TEST_F(HierarchyTest, PrefetchUseCountedOnlyOnce)
{
    load(0x80000, 0, Requester::Runahead);
    load(0x80000, 100000, Requester::Demand);
    load(0x80000, 100100, Requester::Demand);
    EXPECT_EQ(hier.stats().pf_used_l1, 1u);
}

TEST_F(HierarchyTest, MlpIntegratesMshrOccupancy)
{
    // Two overlapping misses of ~242 cycles each.
    load(0x90000, 0);
    load(0xA0000, 0);
    double mlp = hier.mlp(500);
    EXPECT_NEAR(mlp, 2.0 * 238.0 / 500.0, 0.2);
}

TEST_F(HierarchyTest, MshrSaturationDelaysFills)
{
    // Issue many more concurrent misses than the 24 MSHRs.
    Cycle max_lat = 0;
    for (uint64_t i = 0; i < 64; i++) {
        AccessResult r = load(0x200000 + i * 64, 0);
        max_lat = std::max(max_lat, r.latency);
    }
    // The last ones must wait for MSHR turnover (~2 generations).
    EXPECT_GT(max_lat, 400u);
}

TEST(HierarchyStridePfTest, StreamGetsPrefetched)
{
    MemoryImage image;
    SystemConfig cfg = SystemConfig::paper();
    cfg.stride_pf.enabled = true;
    MemoryHierarchy hier(cfg, image);

    // Walk an array with a fixed PC; after training, lines ahead
    // should already be present.
    uint64_t pc = 0x99;
    Cycle t = 0;
    uint64_t misses_late = 0;
    for (int i = 0; i < 256; i++) {
        AccessResult r = hier.access(0x500000 + uint64_t(i) * 8, pc, t,
                                     false, Requester::Demand);
        if (i > 64 && r.level == HitLevel::Memory)
            ++misses_late;
        t += 300;   // generous spacing: prefetches have time to land
    }
    EXPECT_EQ(misses_late, 0u);
    EXPECT_GT(hier.stats()
                  .dram_by_requester[size_t(Requester::StridePf)],
              0u);
}

} // namespace
} // namespace vrsim

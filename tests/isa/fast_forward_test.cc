/**
 * @file
 * Unit tests of the functional fast-forward path (docs/sampling.md):
 * fastForward() must advance architectural state exactly like the
 * step-by-step interpreter, stop precisely at its budget or at halt,
 * and feed an attached StateDigest the same commit stream the
 * detailed core's commit path would — byte-identical digests are the
 * sampling subsystem's correctness oracle.
 */

#include <gtest/gtest.h>

#include "isa/interp.hh"
#include "sim/digest.hh"

namespace vrsim
{
namespace
{

/** A small program with loads, stores, branches and FP: every commit-
 *  record field class is exercised. */
Program
mixedProgram()
{
    // for (i = 0; i < 64; i++) { t = mem[0x1000+i*8]; t = hash(t);
    //   mem[0x2000+i*8] = t + i; }
    ProgramBuilder b("mixed");
    b.movi(1, 0);          // i
    b.movi(2, 0x1000);     // src base
    b.movi(3, 0x2000);     // dst base
    b.movi(4, 64);         // bound
    auto top = b.here();
    b.ld(5, 2, 1, 8);
    b.hash(6, 5, 0x9E);
    b.add(6, 6, 1);
    b.st(6, 3, 1, 8);
    b.addi(1, 1, 1);
    b.cmpltu(7, 1, 4);
    b.br(7, top);
    b.halt();
    return b.build();
}

void
seedMemory(MemoryImage &mem)
{
    for (uint64_t i = 0; i < 64; i++)
        mem.write64(0x1000 + i * 8, i * 0x1234567 + 3);
}

TEST(FastForwardTest, MatchesStepByStepInterpreter)
{
    Program p = mixedProgram();
    MemoryImage m1, m2;
    seedMemory(m1);
    seedMemory(m2);
    CpuState s1, s2;

    uint64_t n1 = fastForward(p, s1, m1, 1'000'000);
    uint64_t n2 = 0;
    while (!s2.halted) {
        step(p, s2, m2);
        n2++;
    }

    EXPECT_EQ(n1, n2);
    EXPECT_TRUE(s1.halted);
    EXPECT_EQ(s1.pc, s2.pc);
    for (size_t r = 0; r < s1.regs.size(); r++)
        EXPECT_EQ(s1.regs[r], s2.regs[r]) << "reg " << r;
    for (uint64_t i = 0; i < 64; i++)
        EXPECT_EQ(m1.read64(0x2000 + i * 8), m2.read64(0x2000 + i * 8))
            << "slot " << i;
}

TEST(FastForwardTest, StopsExactlyAtBudget)
{
    Program p = mixedProgram();
    MemoryImage m1, m2;
    seedMemory(m1);
    seedMemory(m2);
    CpuState s1, s2;

    // 100 insts in one call vs. 60 + 40 in two: identical states.
    EXPECT_EQ(fastForward(p, s1, m1, 100), 100u);
    EXPECT_EQ(fastForward(p, s2, m2, 60), 60u);
    EXPECT_EQ(fastForward(p, s2, m2, 40), 40u);
    EXPECT_EQ(s1.pc, s2.pc);
    for (size_t r = 0; r < s1.regs.size(); r++)
        EXPECT_EQ(s1.regs[r], s2.regs[r]) << "reg " << r;
    EXPECT_FALSE(s1.halted);
}

TEST(FastForwardTest, ReturnsShortCountOnHalt)
{
    Program p = mixedProgram();
    MemoryImage m;
    seedMemory(m);
    CpuState s;
    uint64_t total = fastForward(p, s, m, 1'000'000);
    EXPECT_TRUE(s.halted);
    EXPECT_LT(total, 1'000'000u);

    // Asking for more after halt executes nothing.
    EXPECT_EQ(fastForward(p, s, m, 10), 0u);
}

TEST(FastForwardTest, DigestMatchesManualCommitRecords)
{
    Program p = mixedProgram();
    MemoryImage m1, m2;
    seedMemory(m1);
    seedMemory(m2);
    CpuState s1, s2;

    StateDigest d1(32);
    fastForward(p, s1, m1, 1'000'000, &d1);

    // The reference: hand-built commit records from the step loop —
    // exactly what the detailed core's commit path feeds its digest.
    StateDigest d2(32);
    while (!s2.halted) {
        StepInfo si = step(p, s2, m2);
        d2.retire(commitRecordOf(si));
    }

    DigestRecord r1 = d1.record();
    DigestRecord r2 = d2.record();
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_EQ(r1.final_digest, r2.final_digest);
    ASSERT_EQ(r1.intervals.size(), r2.intervals.size());
    for (size_t i = 0; i < r1.intervals.size(); i++)
        EXPECT_EQ(r1.intervals[i], r2.intervals[i]) << "interval " << i;
    EXPECT_FALSE(compareDigests(r2, r1).has_value());
}

TEST(FastForwardTest, DigestSplitsAtArbitraryBoundaries)
{
    Program p = mixedProgram();
    MemoryImage m1, m2;
    seedMemory(m1);
    seedMemory(m2);
    CpuState s1, s2;

    StateDigest whole(16);
    fastForward(p, s1, m1, 1'000'000, &whole);

    // The same stream hashed through many small fastForward calls with
    // budgets that do not align to the digest interval.
    StateDigest split(16);
    for (uint64_t chunk : {7u, 13u, 64u, 1u, 200u}) {
        fastForward(p, s2, m2, chunk, &split);
    }
    fastForward(p, s2, m2, 1'000'000, &split);

    EXPECT_FALSE(compareDigests(whole.record(), split.record()));
}

} // namespace
} // namespace vrsim

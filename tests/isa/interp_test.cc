/**
 * @file
 * Unit tests for the µop ISA: encoding, builder labels, functional
 * semantics of every opcode, and speculative-execution rules.
 */

#include <gtest/gtest.h>

#include "isa/interp.hh"

namespace vrsim
{
namespace
{

class InterpTest : public ::testing::Test
{
  protected:
    MemoryImage mem;
    CpuState st;

    uint64_t
    runProg(Program p, uint64_t limit = 10000)
    {
        return run(p, st, mem, limit);
    }
};

TEST_F(InterpTest, MoviAndAluOps)
{
    ProgramBuilder b("alu");
    b.movi(1, 21);
    b.movi(2, 2);
    b.mul(3, 1, 2);      // 42
    b.addi(4, 3, -2);    // 40
    b.sub(5, 3, 4);      // 2
    b.shl(6, 5, 2);      // wait: shl uses reg source
    b.halt();
    Program p = b.build();
    runProg(p);
    EXPECT_EQ(st.regs[3], 42u);
    EXPECT_EQ(st.regs[4], 40u);
    EXPECT_EQ(st.regs[5], 2u);
    EXPECT_EQ(st.regs[6], 2u << 2);
    EXPECT_TRUE(st.halted);
}

TEST_F(InterpTest, ImmediateAluVariants)
{
    ProgramBuilder b("imm");
    b.movi(1, 10);
    b.muli(2, 1, 6);     // 60
    b.andi(3, 2, 0x1C);  // 0x3C & 0x1C = 0x1C
    b.shli(4, 1, 3);     // 80
    b.shri(5, 4, 2);     // 20
    b.halt();
    runProg(b.build());
    EXPECT_EQ(st.regs[2], 60u);
    EXPECT_EQ(st.regs[3], 0x1Cu);
    EXPECT_EQ(st.regs[4], 80u);
    EXPECT_EQ(st.regs[5], 20u);
}

TEST_F(InterpTest, DivideByZeroSaturates)
{
    ProgramBuilder b("div0");
    b.movi(1, 100);
    b.movi(2, 0);
    b.divu(3, 1, 2);
    b.halt();
    runProg(b.build());
    EXPECT_EQ(st.regs[3], ~0ull);
}

TEST_F(InterpTest, HashMatchesHelper)
{
    ProgramBuilder b("hash");
    b.movi(1, 0x1234);
    b.hash(2, 1);
    b.hash(3, 1, 7);
    b.halt();
    runProg(b.build());
    EXPECT_EQ(st.regs[2], hashMix64(0x1234));
    EXPECT_EQ(st.regs[3], hashMix64(0x1234 ^ 7));
}

TEST_F(InterpTest, CompareSemantics)
{
    ProgramBuilder b("cmp");
    b.movi(1, -5);
    b.movi(2, 3);
    b.cmplt(3, 1, 2);    // signed: -5 < 3 -> 1
    b.cmpltu(4, 1, 2);   // unsigned: huge < 3 -> 0
    b.cmpeq(5, 1, 1);
    b.cmpne(6, 1, 2);
    b.cmplti(7, 1, 0);   // -5 < 0 -> 1
    b.cmpeqi(8, 2, 4);
    b.halt();
    runProg(b.build());
    EXPECT_EQ(st.regs[3], 1u);
    EXPECT_EQ(st.regs[4], 0u);
    EXPECT_EQ(st.regs[5], 1u);
    EXPECT_EQ(st.regs[6], 1u);
    EXPECT_EQ(st.regs[7], 1u);
    EXPECT_EQ(st.regs[8], 0u);
}

TEST_F(InterpTest, LoopWithBackwardBranch)
{
    // sum = 0; for (i = 0; i < 10; i++) sum += i;
    ProgramBuilder b("loop");
    b.movi(1, 0);        // i
    b.movi(2, 0);        // sum
    b.movi(3, 10);       // bound
    auto top = b.here();
    b.add(2, 2, 1);
    b.addi(1, 1, 1);
    b.cmpltu(4, 1, 3);
    b.br(4, top);
    b.halt();
    uint64_t n = runProg(b.build());
    EXPECT_EQ(st.regs[2], 45u);
    EXPECT_EQ(n, 3u + 10 * 4 + 1);
}

TEST_F(InterpTest, ForwardLabelResolution)
{
    ProgramBuilder b("fwd");
    auto out = b.makeLabel();
    b.movi(1, 1);
    b.br(1, out);
    b.movi(2, 99);       // skipped
    b.bind(out);
    b.movi(3, 7);
    b.halt();
    runProg(b.build());
    EXPECT_EQ(st.regs[2], 0u);
    EXPECT_EQ(st.regs[3], 7u);
}

TEST_F(InterpTest, LoadStoreRoundTrip)
{
    mem.write64(0x1000, 0xDEADBEEF);
    ProgramBuilder b("mem");
    b.movi(1, 0x1000);
    b.ld(2, 1);                       // r2 = mem[0x1000]
    b.addi(3, 2, 1);
    b.st(3, 1, REG_NONE, 1, 8);       // mem[0x1008] = r3
    b.ld(4, 1, REG_NONE, 1, 8);
    b.halt();
    runProg(b.build());
    EXPECT_EQ(st.regs[2], 0xDEADBEEFull);
    EXPECT_EQ(st.regs[4], 0xDEADBEF0ull);
    EXPECT_EQ(mem.read64(0x1008), 0xDEADBEF0ull);
}

TEST_F(InterpTest, ScaledIndexedAddressing)
{
    for (uint64_t i = 0; i < 8; i++)
        mem.write64(0x2000 + i * 8, i * 100);
    ProgramBuilder b("idx");
    b.movi(1, 0x2000);
    b.movi(2, 5);
    b.ld(3, 1, 2, 8);                 // mem[0x2000 + 5*8]
    b.ld32(4, 1, 2, 8);               // low half only
    b.halt();
    runProg(b.build());
    EXPECT_EQ(st.regs[3], 500u);
    EXPECT_EQ(st.regs[4], 500u);
}

TEST_F(InterpTest, Load32ZeroExtends)
{
    mem.write64(0x3000, 0xFFFFFFFF12345678ull);
    ProgramBuilder b("ld32");
    b.movi(1, 0x3000);
    b.ld32(2, 1);
    b.halt();
    runProg(b.build());
    EXPECT_EQ(st.regs[2], 0x12345678ull);
}

TEST_F(InterpTest, SpeculativeStoresSuppressed)
{
    ProgramBuilder b("spec");
    b.movi(1, 0x4000);
    b.movi(2, 77);
    b.st(2, 1);
    b.halt();
    Program p = b.build();
    while (!st.halted)
        step(p, st, mem, true);       // speculative
    EXPECT_EQ(mem.read64(0x4000), 0u);
}

TEST_F(InterpTest, FloatingPointBitcastOps)
{
    mem.writeF64(0x5000, 1.5);
    mem.writeF64(0x5008, 2.25);
    ProgramBuilder b("fp");
    b.movi(1, 0x5000);
    b.ld(2, 1);
    b.ld(3, 1, REG_NONE, 1, 8);
    b.fadd(4, 2, 3);
    b.fmul(5, 2, 3);
    b.fdiv(6, 3, 2);
    b.movi(7, 0x5010);
    b.st(4, 7);
    b.halt();
    runProg(b.build());
    EXPECT_DOUBLE_EQ(mem.readF64(0x5010), 3.75);
}

TEST_F(InterpTest, StepInfoReportsMemAndBranch)
{
    mem.write64(0x6000, 5);
    ProgramBuilder b("info");
    b.movi(1, 0x6000);
    b.ld(2, 1);
    b.cmpeqi(3, 2, 5);
    auto dest = b.makeLabel();
    b.br(3, dest);
    b.nop();
    b.bind(dest);
    b.halt();
    Program p = b.build();

    StepInfo s0 = step(p, st, mem);
    EXPECT_FALSE(s0.is_mem);
    StepInfo s1 = step(p, st, mem);
    EXPECT_TRUE(s1.is_mem);
    EXPECT_FALSE(s1.is_store);
    EXPECT_EQ(s1.addr, 0x6000u);
    EXPECT_EQ(s1.size, 8u);
    EXPECT_EQ(s1.dst_value, 5u);
    step(p, st, mem);                 // cmp
    StepInfo s3 = step(p, st, mem);
    EXPECT_TRUE(s3.is_branch);
    EXPECT_TRUE(s3.taken);
    EXPECT_EQ(s3.next_pc, 5u);
}

TEST_F(InterpTest, HaltStopsRun)
{
    ProgramBuilder b("halt");
    b.halt();
    b.movi(1, 1);
    uint64_t n = runProg(b.build());
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(st.regs[1], 0u);
    EXPECT_TRUE(st.halted);
}

TEST_F(InterpTest, RunRespectsInstLimit)
{
    ProgramBuilder b("inf");
    auto top = b.here();
    b.addi(1, 1, 1);
    b.jmp(top);
    uint64_t n = runProg(b.build(), 100);
    EXPECT_EQ(n, 100u);
    EXPECT_FALSE(st.halted);
}

TEST_F(InterpTest, DisassemblyIsReadable)
{
    ProgramBuilder b("dis");
    b.ld(2, 1, 3, 8, 16);
    b.st(4, 1, REG_NONE, 1, 8);
    b.movi(1, 5);
    Program p = b.build();
    EXPECT_NE(p.at(0).toString().find("ld"), std::string::npos);
    EXPECT_NE(p.at(0).toString().find("r2"), std::string::npos);
    EXPECT_NE(p.at(1).toString().find("->"), std::string::npos);
}

TEST_F(InterpTest, PanicOnPcOutOfRange)
{
    ProgramBuilder b("oob");
    b.movi(1, 1);
    Program p = b.build();
    st.pc = 5;
    EXPECT_THROW(step(p, st, mem), PanicError);
}

TEST_F(InterpTest, UnboundLabelPanicsAtBuild)
{
    ProgramBuilder b("unbound");
    auto l = b.makeLabel();
    b.jmp(l);
    EXPECT_THROW(b.build(), PanicError);
}

TEST_F(InterpTest, EffectiveAddressHelper)
{
    Inst ld{Op::Ld, 2, 1, 3, REG_NONE, 8, 24};
    std::array<uint64_t, NUM_ARCH_REGS> regs{};
    regs[1] = 0x1000;
    regs[3] = 4;
    auto rd = [&](uint8_t r) { return regs[r]; };
    EXPECT_EQ(effectiveAddress(ld, rd), 0x1000u + 4 * 8 + 24);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Parameterized property tests for the interpreter: every ALU opcode
 * is checked against its C++ reference semantics over a sweep of
 * operand classes (zero, one, small, large, sign-boundary, random).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "isa/interp.hh"
#include "sim/rng.hh"

namespace vrsim
{
namespace
{

/** Reference semantics of a register-register ALU op. */
uint64_t
referenceAlu(Op op, uint64_t a, uint64_t b)
{
    auto f64 = [](uint64_t bits) {
        double d;
        std::memcpy(&d, &bits, 8);
        return d;
    };
    auto bits = [](double d) {
        uint64_t v;
        std::memcpy(&v, &d, 8);
        return v;
    };
    switch (op) {
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::Mul: return a * b;
      case Op::Divu: return b ? a / b : ~0ull;
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::Shl: return a << (b & 63);
      case Op::Shr: return a >> (b & 63);
      case Op::CmpLt: return uint64_t(int64_t(a) < int64_t(b));
      case Op::CmpLtu: return uint64_t(a < b);
      case Op::CmpEq: return uint64_t(a == b);
      case Op::CmpNe: return uint64_t(a != b);
      case Op::FAdd: return bits(f64(a) + f64(b));
      case Op::FMul: return bits(f64(a) * f64(b));
      case Op::FDiv: return bits(f64(a) / f64(b));
      default: panic("unsupported op in reference");
    }
}

class AluOpProperty : public ::testing::TestWithParam<Op>
{
};

TEST_P(AluOpProperty, MatchesReferenceAcrossOperandClasses)
{
    const Op op = GetParam();
    const uint64_t interesting[] = {
        0, 1, 2, 63, 64, 0x7FFFFFFFFFFFFFFFull,
        0x8000000000000000ull, ~0ull, 0x123456789ABCDEFull,
    };
    MemoryImage mem;
    Rng rng(uint64_t(op) * 977 + 5);

    auto check = [&](uint64_t a, uint64_t bv) {
        ProgramBuilder b("p");
        b.emitRaw(Inst{op, 3, 1, 2});
        b.halt();
        Program p = b.build();
        CpuState st;
        st.regs[1] = a;
        st.regs[2] = bv;
        run(p, st, mem);
        uint64_t expect = referenceAlu(op, a, bv);
        // NaN-safe comparison: compare bit patterns.
        ASSERT_EQ(st.regs[3], expect)
            << opName(op) << "(" << a << ", " << bv << ")";
    };

    for (uint64_t a : interesting)
        for (uint64_t b : interesting)
            check(a, b);
    for (int i = 0; i < 200; i++)
        check(rng.next(), rng.next());
}

INSTANTIATE_TEST_SUITE_P(
    AllAluOps, AluOpProperty,
    ::testing::Values(Op::Add, Op::Sub, Op::Mul, Op::Divu, Op::And,
                      Op::Or, Op::Xor, Op::Shl, Op::Shr, Op::CmpLt,
                      Op::CmpLtu, Op::CmpEq, Op::CmpNe),
    [](const ::testing::TestParamInfo<Op> &info) {
        return opName(info.param);
    });

/** Scale/displacement sweep for memory addressing. */
class AddressingProperty
    : public ::testing::TestWithParam<std::tuple<int, int64_t>>
{
};

TEST_P(AddressingProperty, EffectiveAddressMatchesFormula)
{
    auto [scale, disp] = GetParam();
    MemoryImage mem;
    const uint64_t base = 0x40000;
    const uint64_t index = 13;
    uint64_t ea = base + index * uint64_t(scale) + uint64_t(disp);
    mem.write64(ea, 0xFEEDull + uint64_t(scale));

    ProgramBuilder b("ea");
    b.ld(3, 1, 2, uint8_t(scale), disp);
    b.halt();
    Program p = b.build();
    CpuState st;
    st.regs[1] = base;
    st.regs[2] = index;
    run(p, st, mem);
    EXPECT_EQ(st.regs[3], 0xFEEDull + uint64_t(scale));
}

INSTANTIATE_TEST_SUITE_P(
    ScaleDispSweep, AddressingProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(int64_t(0), int64_t(8),
                                         int64_t(64), int64_t(-8))));

/** Hash sequence equivalence across salts. */
class HashSeqProperty : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(HashSeqProperty, HashSeqMatchesHashMix64)
{
    const int64_t salt = GetParam();
    MemoryImage mem;
    Rng rng(uint64_t(salt) + 99);
    for (int i = 0; i < 50; i++) {
        uint64_t x = rng.next();
        ProgramBuilder b("h");
        b.movi(1, int64_t(x));
        b.hashSeq(2, 1, 3, salt);
        b.hash(4, 1, salt);      // the single-µop form
        b.halt();
        Program p = b.build();
        CpuState st;
        run(p, st, mem);
        ASSERT_EQ(st.regs[2], hashMix64(x ^ uint64_t(salt)));
        ASSERT_EQ(st.regs[2], st.regs[4]);
    }
}

INSTANTIATE_TEST_SUITE_P(Salts, HashSeqProperty,
                         ::testing::Values(0, 1, 3, 5, 7, 0x1234));

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for opcode traits and disassembly: every opcode must have
 * self-consistent traits and a usable mnemonic.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/inst.hh"

namespace vrsim
{
namespace
{

std::vector<Op>
allOps()
{
    std::vector<Op> ops;
    for (size_t i = 0; i < size_t(Op::NumOps); i++)
        ops.push_back(Op(i));
    return ops;
}

TEST(OpcodesTest, EveryOpHasAUniqueMnemonic)
{
    std::set<std::string> names;
    for (Op op : allOps()) {
        std::string n = opName(op);
        EXPECT_FALSE(n.empty());
        EXPECT_TRUE(names.insert(n).second) << n << " duplicated";
    }
}

TEST(OpcodesTest, TraitClassesAreConsistent)
{
    for (Op op : allOps()) {
        const OpTraits &t = opTraits(op);
        // A µop is at most one of load/store/prefetch/branch.
        int kinds = int(t.is_load) + int(t.is_store) +
                    int(t.is_prefetch) + int(t.is_branch);
        EXPECT_LE(kinds, 1) << opName(op);
        // Loads write a destination; stores and branches never do.
        if (t.is_load)
            EXPECT_TRUE(t.writes_dst) << opName(op);
        if (t.is_store || t.is_branch || t.is_prefetch)
            EXPECT_FALSE(t.writes_dst) << opName(op);
        // Compares write their 0/1 result.
        if (t.is_compare)
            EXPECT_TRUE(t.writes_dst) << opName(op);
        // Conditional branches are branches.
        if (t.is_cond_branch)
            EXPECT_TRUE(t.is_branch) << opName(op);
        // Memory ops run on memory FUs.
        if (t.is_load || t.is_prefetch)
            EXPECT_EQ(int(t.fu), int(FuClass::Load)) << opName(op);
        if (t.is_store)
            EXPECT_EQ(int(t.fu), int(FuClass::Store)) << opName(op);
    }
}

TEST(OpcodesTest, DisassemblyMentionsMnemonicAndRegs)
{
    for (Op op : allOps()) {
        if (op == Op::NumOps)
            continue;
        Inst i{op, 1, 2, 3, 4, 8, 16};
        std::string s = i.toString();
        EXPECT_EQ(s.rfind(opName(op), 0), 0u)
            << "'" << s << "' must start with the mnemonic";
    }
}

TEST(OpcodesTest, BadOpcodePanics)
{
    EXPECT_THROW(opTraits(Op::NumOps), PanicError);
    EXPECT_THROW(opName(Op::NumOps), PanicError);
}

TEST(OpcodesTest, HashMixIsAPermutationSample)
{
    // splitmix64's finalizer is bijective; spot-check no collisions
    // over a decent sample.
    std::set<uint64_t> outs;
    for (uint64_t x = 0; x < 10000; x++)
        EXPECT_TRUE(outs.insert(hashMix64(x)).second) << x;
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace vrsim
{
namespace
{

TEST(ScalarTest, IncrementAndAssign)
{
    Scalar s("hits");
    ++s;
    ++s;
    s += 3.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s = 1.0;
    EXPECT_DOUBLE_EQ(s.value(), 1.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(AverageTest, MeanOfSamples)
{
    Average a("lat");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 60.0);
}

TEST(AverageTest, DescriptionAndDump)
{
    Average a("lat", "load-to-use latency");
    EXPECT_EQ(a.name(), "lat");
    EXPECT_EQ(a.desc(), "load-to-use latency");
    a.sample(10);
    a.sample(30);
    std::ostringstream os;
    a.dump(os);
    EXPECT_EQ(os.str(), "lat 20 # load-to-use latency (2 samples)\n");

    // No description -> no comment marker.
    Average bare("x");
    bare.sample(1);
    std::ostringstream os2;
    bare.dump(os2);
    EXPECT_EQ(os2.str(), "x 1 (1 samples)\n");
}

TEST(HistogramTest, NameGeometryAndDump)
{
    Histogram h("occ", 2, 10.0);
    EXPECT_EQ(h.name(), "occ");
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 10.0);
    h.sample(5);
    h.sample(25);   // overflow bucket
    std::ostringstream os;
    h.dump(os);
    // Every line is prefixed with the histogram's name so several
    // histograms can share one stream.
    EXPECT_NE(os.str().find("occ.mean 15"), std::string::npos);
    EXPECT_NE(os.str().find("occ.total 2"), std::string::npos);
    EXPECT_NE(os.str().find("occ[0,10) 1"), std::string::npos);
    EXPECT_NE(os.str().find("occ[10,20) 0"), std::string::npos);
    EXPECT_NE(os.str().find("occ[20+) 1"), std::string::npos);
}

TEST(HistogramTest, BucketingAndOverflow)
{
    Histogram h("occ", 4, 10.0);   // buckets [0,10) ... [30,40) + ovf
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(100);    // overflow
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.25);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(4), 0.25);
}

TEST(HistogramTest, WeightedSamplesAndMean)
{
    Histogram h("w", 10, 1.0);
    h.sample(2, 3);   // three samples of value 2
    h.sample(8, 1);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (2 * 3 + 8) / 4.0);
}

TEST(HistogramTest, NegativeValuesClampToFirstBucket)
{
    Histogram h("n", 4, 1.0);
    h.sample(-3.0);
    EXPECT_EQ(h.buckets()[0], 1u);
}

TEST(HistogramTest, BadGeometryPanics)
{
    EXPECT_THROW(Histogram("bad", 0, 1.0), PanicError);
    EXPECT_THROW(Histogram("bad", 4, 0.0), PanicError);
}

TEST(StatGroupTest, CreateLookupDump)
{
    StatGroup g("core");
    g.scalar("cycles") += 100;
    g.scalar("insts") += 250;
    EXPECT_TRUE(g.has("cycles"));
    EXPECT_FALSE(g.has("nope"));
    EXPECT_DOUBLE_EQ(g.value("insts"), 250.0);
    EXPECT_THROW(g.value("nope"), PanicError);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("core.cycles 100"), std::string::npos);
    EXPECT_NE(os.str().find("core.insts 250"), std::string::npos);

    g.reset();
    EXPECT_DOUBLE_EQ(g.value("cycles"), 0.0);
}

TEST(StatGroupTest, ScalarIsStableAcrossInserts)
{
    StatGroup g;
    Scalar &a = g.scalar("a");
    a += 1;
    for (int i = 0; i < 100; i++)
        g.scalar("s" + std::to_string(i));
    // std::map storage: references must remain valid.
    a += 1;
    EXPECT_DOUBLE_EQ(g.value("a"), 2.0);
}

} // namespace
} // namespace vrsim

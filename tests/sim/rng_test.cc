/**
 * @file
 * Tests for the deterministic RNG: reproducibility, range, and crude
 * uniformity (workload generation depends on these properties).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hh"

namespace vrsim
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(r.below(17), 17u);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BelowRoughlyUniform)
{
    Rng r(11);
    std::vector<int> counts(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; i++)
        ++counts[r.below(8)];
    for (int c : counts)
        EXPECT_NEAR(double(c), n / 8.0, n / 8.0 * 0.1);
}

TEST(RngTest, ZeroSeedStillWorks)
{
    Rng r(0);
    uint64_t v = r.next();
    EXPECT_NE(v, 0u);   // splitmix expansion avoids the zero state
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for the logging layer's robustness features: per-thread log
 * context tagging of errors and the per-call-site warn rate limiter
 * (warn-once-then-count).
 */

#include <gtest/gtest.h>

#include <source_location>
#include <thread>

#include "sim/logging.hh"

namespace vrsim
{
namespace
{

/** Restore a clean logging state around each test. */
class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setLogContext("");
        resetWarnRateLimit();
    }
    void TearDown() override
    {
        setLogContext("");
        resetWarnRateLimit();
    }
};

TEST_F(LoggingTest, PanicAndFatalCarryLogContext)
{
    setLogContext("camel:VR");
    try {
        panic("window invariant violated");
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("[camel:VR]"),
                  std::string::npos);
    }
    try {
        fatal("bad config");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("[camel:VR]"),
                  std::string::npos);
    }
}

TEST_F(LoggingTest, ClearedContextLeavesMessagesUntagged)
{
    setLogContext("camel:VR");
    setLogContext("");
    try {
        panic("plain");
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_EQ(std::string(e.what()).find('['), std::string::npos);
    }
}

TEST_F(LoggingTest, HangSnapshotIsStampedWithContext)
{
    setLogContext("hj2:DVR");
    ProgressSnapshot snap;
    snap.where = "core";
    try {
        hang("no retirement", std::move(snap));
        FAIL() << "hang did not throw";
    } catch (const HangError &e) {
        EXPECT_EQ(e.progress().point, "hj2:DVR");
        EXPECT_NE(std::string(e.what()).find("point=hj2:DVR"),
                  std::string::npos);
    }
}

TEST_F(LoggingTest, HangKeepsExplicitlyStampedPoint)
{
    setLogContext("ignored:context");
    ProgressSnapshot snap;
    snap.point = "explicit:point";
    snap.where = "lanes";
    try {
        hang("wedged", std::move(snap));
        FAIL() << "hang did not throw";
    } catch (const HangError &e) {
        EXPECT_EQ(e.progress().point, "explicit:point");
    }
}

TEST_F(LoggingTest, LogContextIsPerThread)
{
    setLogContext("main:thread");
    std::string other;
    std::thread t([&] { other = logContext(); });
    t.join();
    EXPECT_EQ(other, "");
    EXPECT_EQ(logContext(), "main:thread");
}

TEST_F(LoggingTest, WarnCountsPerCallSite)
{
    const auto site = std::source_location::current();
    EXPECT_EQ(warnCount(site), 0u);
    for (int i = 0; i < 5; i++)
        warn("flooding warning for the rate-limit test", site);
    // All five occurrences are counted even though only the first two
    // lines were printed.
    EXPECT_EQ(warnCount(site), 5u);

    const auto other = std::source_location::current();
    warn("a different call site is limited independently", other);
    EXPECT_EQ(warnCount(other), 1u);
    EXPECT_EQ(warnCount(site), 5u);
}

TEST_F(LoggingTest, ResetClearsWarnCounts)
{
    const auto site = std::source_location::current();
    warn("counted once", site);
    EXPECT_EQ(warnCount(site), 1u);
    resetWarnRateLimit();
    EXPECT_EQ(warnCount(site), 0u);
}

TEST_F(LoggingTest, WarnSummaryRunsCleanly)
{
    const auto site = std::source_location::current();
    for (int i = 0; i < 3; i++)
        warn("suppressed twice, summarized at exit", site);
    // Summary printing must not disturb the counts it reports.
    printWarnSummary();
    EXPECT_EQ(warnCount(site), 3u);
}

} // namespace
} // namespace vrsim

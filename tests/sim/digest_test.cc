/**
 * @file
 * Unit tests for the differential-oracle primitives: StateDigest
 * determinism, interval sampling, sensitivity to every architectural
 * field, divergence localization, and the ScopedSpeculation
 * commit-visibility guard.
 */

#include <gtest/gtest.h>

#include "sim/digest.hh"

namespace vrsim
{
namespace
{

CommitRecord
regWrite(uint32_t pc, uint8_t reg, uint64_t value)
{
    CommitRecord cr;
    cr.pc = pc;
    cr.writes_reg = true;
    cr.reg = reg;
    cr.reg_value = value;
    return cr;
}

CommitRecord
store(uint32_t pc, uint64_t addr, uint64_t value)
{
    CommitRecord cr;
    cr.pc = pc;
    cr.is_store = true;
    cr.store_addr = addr;
    cr.store_value = value;
    return cr;
}

/** A short synthetic committed stream with varied record shapes. */
std::vector<CommitRecord>
stream(size_t n)
{
    std::vector<CommitRecord> s;
    for (size_t i = 0; i < n; i++) {
        if (i % 3 == 2)
            s.push_back(store(uint32_t(i * 4), 0x1000 + i * 8,
                              i * 0x9e37));
        else
            s.push_back(regWrite(uint32_t(i * 4), uint8_t(i % 32),
                                 i * 0x85eb));
    }
    return s;
}

DigestRecord
digestOf(const std::vector<CommitRecord> &s, uint64_t interval = 8192)
{
    StateDigest d(interval);
    for (const CommitRecord &cr : s)
        d.retire(cr);
    return d.record();
}

TEST(StateDigestTest, DeterministicAcrossRuns)
{
    std::vector<CommitRecord> s = stream(100);
    EXPECT_EQ(digestOf(s), digestOf(s));
}

TEST(StateDigestTest, IntervalSampling)
{
    DigestRecord r = digestOf(stream(10), 4);
    EXPECT_EQ(r.interval, 4u);
    EXPECT_EQ(r.instructions, 10u);
    ASSERT_EQ(r.intervals.size(), 2u);
    // Running hash: each sample extends the previous one.
    EXPECT_NE(r.intervals[0], r.intervals[1]);
    // Two tail instructions past the last sample are still covered.
    EXPECT_NE(r.final_digest, r.intervals[1]);
}

TEST(StateDigestTest, ExactMultipleLeavesNoTail)
{
    DigestRecord r = digestOf(stream(8), 4);
    ASSERT_EQ(r.intervals.size(), 2u);
    EXPECT_EQ(r.final_digest, r.intervals[1]);
}

TEST(StateDigestTest, SensitiveToEveryArchitecturalField)
{
    std::vector<CommitRecord> s = stream(20);
    const DigestRecord base = digestOf(s);

    auto perturbed = [&](auto mutate) {
        std::vector<CommitRecord> t = s;
        mutate(t);
        return digestOf(t);
    };

    EXPECT_NE(base, perturbed([](auto &t) { t[7].reg_value ^= 1; }));
    EXPECT_NE(base, perturbed([](auto &t) { t[7].reg ^= 1; }));
    EXPECT_NE(base, perturbed([](auto &t) { t[7].pc ^= 4; }));
    EXPECT_NE(base, perturbed([](auto &t) { t[8].store_value ^= 1; }));
    EXPECT_NE(base, perturbed([](auto &t) { t[8].store_addr ^= 8; }));
}

TEST(StateDigestTest, RegWriteAndStoreDoNotAlias)
{
    // Same pc and same 64-bit payload, different field class: the
    // class tags must keep the hashes apart.
    DigestRecord as_reg = digestOf({regWrite(0x40, 0, 0xabcd)});
    DigestRecord as_store = digestOf({store(0x40, 0, 0xabcd)});
    EXPECT_NE(as_reg.final_digest, as_store.final_digest);
}

TEST(StateDigestTest, OrderMatters)
{
    std::vector<CommitRecord> s = stream(6);
    std::vector<CommitRecord> swapped = s;
    std::swap(swapped[1], swapped[4]);
    EXPECT_NE(digestOf(s), digestOf(swapped));
}

TEST(StateDigestTest, ZeroIntervalPanics)
{
    EXPECT_THROW(StateDigest(0), PanicError);
}

TEST(CompareDigestsTest, EqualDigestsAgree)
{
    DigestRecord r = digestOf(stream(50), 8);
    EXPECT_FALSE(compareDigests(r, r).has_value());
}

TEST(CompareDigestsTest, LocalizesFirstMismatchingInterval)
{
    DigestRecord base = digestOf(stream(50), 8);
    DigestRecord run = base;
    ASSERT_GE(run.intervals.size(), 4u);
    run.intervals[2] ^= 0xdead;
    run.intervals[3] ^= 0xbeef;
    run.final_digest ^= 0xf00d;

    auto div = compareDigests(base, run);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->interval_index, 2u);
    EXPECT_EQ(div->inst_lo, 16u);
    EXPECT_EQ(div->inst_hi, 24u);
    EXPECT_EQ(div->expected, base.intervals[2]);
    EXPECT_EQ(div->actual, run.intervals[2]);
    EXPECT_NE(div->toString().find("insts [16, 24)"),
              std::string::npos);
}

TEST(CompareDigestsTest, TailOnlyDivergence)
{
    DigestRecord base = digestOf(stream(50), 8);
    DigestRecord run = base;
    run.final_digest ^= 1;  // diverged after the last sample

    auto div = compareDigests(base, run);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->interval_index, base.intervals.size());
    EXPECT_EQ(div->inst_lo, base.intervals.size() * 8);
    EXPECT_EQ(div->inst_hi, 50u);
}

TEST(CompareDigestsTest, TruncatedRunDiverges)
{
    DigestRecord base = digestOf(stream(50), 8);
    DigestRecord run = digestOf(stream(30), 8);
    auto div = compareDigests(base, run);
    ASSERT_TRUE(div.has_value());
    // Streams agree while both ran; the divergence is the missing
    // tail.
    EXPECT_EQ(div->interval_index, run.intervals.size());
    EXPECT_EQ(div->inst_hi, 50u);
}

TEST(CompareDigestsTest, IntervalMismatchIsWholeRunDivergence)
{
    DigestRecord base = digestOf(stream(50), 8);
    DigestRecord run = digestOf(stream(50), 16);
    auto div = compareDigests(base, run);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->inst_lo, 0u);
    EXPECT_EQ(div->inst_hi, 50u);
}

TEST(ScopedSpeculationTest, GuardsRetireAndNests)
{
    StateDigest d;
    EXPECT_EQ(ScopedSpeculation::current(), 0u);
    {
        ScopedSpeculation outer;
        EXPECT_EQ(ScopedSpeculation::current(), 1u);
        EXPECT_THROW(d.retire(regWrite(0, 1, 2)), PanicError);
        {
            ScopedSpeculation inner;
            EXPECT_EQ(ScopedSpeculation::current(), 2u);
            EXPECT_THROW(d.retire(regWrite(0, 1, 2)), PanicError);
        }
        EXPECT_THROW(d.retire(regWrite(0, 1, 2)), PanicError);
    }
    EXPECT_EQ(ScopedSpeculation::current(), 0u);
    EXPECT_NO_THROW(d.retire(regWrite(0, 1, 2)));
    EXPECT_EQ(d.instructions(), 1u);
}

} // namespace
} // namespace vrsim

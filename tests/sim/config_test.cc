/**
 * @file
 * Tests for the system configuration (Table 1 defaults, technique
 * names, bench scaling, printing).
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "sim/config.hh"
#include "sim/logging.hh"

namespace vrsim
{
namespace
{

TEST(ConfigTest, PaperDefaultsMatchTable1)
{
    SystemConfig cfg = SystemConfig::paper();
    EXPECT_EQ(cfg.core.width, 5u);
    EXPECT_EQ(cfg.core.rob_size, 350u);
    EXPECT_EQ(cfg.core.issue_queue, 128u);
    EXPECT_EQ(cfg.core.load_queue, 128u);
    EXPECT_EQ(cfg.core.store_queue, 72u);
    EXPECT_EQ(cfg.core.frontend_stages, 15u);
    EXPECT_EQ(cfg.l1d.size_bytes, 32u * 1024);
    EXPECT_EQ(cfg.l1d.assoc, 8u);
    EXPECT_EQ(cfg.l1d.latency, 4u);
    EXPECT_EQ(cfg.l1d.mshrs, 24u);
    EXPECT_EQ(cfg.l2.size_bytes, 256u * 1024);
    EXPECT_EQ(cfg.l3.size_bytes, 8u * 1024 * 1024);
    EXPECT_EQ(cfg.l3.assoc, 16u);
    EXPECT_EQ(cfg.l3.latency, 30u);
    EXPECT_EQ(cfg.dram.latency, 200u);   // 50 ns at 4 GHz
    EXPECT_DOUBLE_EQ(cfg.dram.bytes_per_cycle, 12.8);
    EXPECT_EQ(cfg.core.int_phys_regs, 256u);
    EXPECT_EQ(cfg.core.vec_phys_regs, 128u);
}

TEST(ConfigTest, RunaheadDefaultsMatchPaper)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.runahead.stride_entries, 32u);
    EXPECT_EQ(cfg.runahead.vector_regs, 16u);
    EXPECT_EQ(cfg.runahead.lanes_per_vector, 8u);
    EXPECT_EQ(cfg.runahead.max_lanes(), 128u);
    EXPECT_EQ(cfg.runahead.subthread_timeout, 200u);
    EXPECT_EQ(cfg.runahead.nested_trigger_lanes, 64u);
    EXPECT_EQ(cfg.runahead.reconv_stack_entries, 8u);
    EXPECT_EQ(cfg.runahead.frontend_buffer_uops, 8u);
}

TEST(ConfigTest, BenchScaleShrinksLlcOnly)
{
    SystemConfig p = SystemConfig::paper();
    SystemConfig b = SystemConfig::benchScale();
    EXPECT_LT(b.l3.size_bytes, p.l3.size_bytes);
    EXPECT_EQ(b.l1d.size_bytes, p.l1d.size_bytes);
    EXPECT_EQ(b.core.rob_size, p.core.rob_size);
}

TEST(ConfigTest, TechniqueNames)
{
    EXPECT_EQ(techniqueName(Technique::OoO), "OoO");
    EXPECT_EQ(techniqueName(Technique::Pre), "PRE");
    EXPECT_EQ(techniqueName(Technique::Imp), "IMP");
    EXPECT_EQ(techniqueName(Technique::Vr), "VR");
    EXPECT_EQ(techniqueName(Technique::Dvr), "DVR");
    EXPECT_EQ(techniqueName(Technique::Oracle), "Oracle");
}

TEST(ConfigTest, PrintConfigMentionsKeyStructures)
{
    std::ostringstream os;
    printConfig(os, SystemConfig::paper());
    EXPECT_NE(os.str().find("ROB 350"), std::string::npos);
    EXPECT_NE(os.str().find("24 MSHRs"), std::string::npos);
    EXPECT_NE(os.str().find("technique"), std::string::npos);
}

TEST(ConfigValidateTest, AcceptsShippedConfigurations)
{
    EXPECT_NO_THROW(SystemConfig::paper().validate(false));
    EXPECT_NO_THROW(SystemConfig::benchScale().validate(false));
}

/** One degenerate-parameter case: name + mutation applied to a valid
 *  baseline, which validate() must then reject with FatalError. */
struct BadConfigCase
{
    const char *name;
    std::function<void(SystemConfig &)> mutate;
};

class ConfigRejection
    : public ::testing::TestWithParam<BadConfigCase>
{
};

TEST_P(ConfigRejection, RejectsDegenerateParameter)
{
    SystemConfig cfg = SystemConfig::benchScale();
    GetParam().mutate(cfg);
    EXPECT_THROW(cfg.validate(false), FatalError) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigRejection,
    ::testing::Values(
        BadConfigCase{"zero_width",
                      [](SystemConfig &c) { c.core.width = 0; }},
        BadConfigCase{"zero_rob",
                      [](SystemConfig &c) { c.core.rob_size = 0; }},
        BadConfigCase{"zero_issue_queue",
                      [](SystemConfig &c) { c.core.issue_queue = 0; }},
        BadConfigCase{"zero_load_queue",
                      [](SystemConfig &c) { c.core.load_queue = 0; }},
        BadConfigCase{"zero_store_queue",
                      [](SystemConfig &c) { c.core.store_queue = 0; }},
        BadConfigCase{"zero_frontend",
                      [](SystemConfig &c) {
                          c.core.frontend_stages = 0;
                      }},
        BadConfigCase{"zero_load_ports",
                      [](SystemConfig &c) { c.core.load_ports = 0; }},
        BadConfigCase{"zero_fu_class",
                      [](SystemConfig &c) { c.core.int_mul_units = 0; }},
        BadConfigCase{"zero_phys_regs",
                      [](SystemConfig &c) { c.core.int_phys_regs = 0; }},
        BadConfigCase{"non_pow2_line",
                      [](SystemConfig &c) { c.l1d.line_bytes = 48; }},
        BadConfigCase{"zero_line",
                      [](SystemConfig &c) { c.l1d.line_bytes = 0; }},
        BadConfigCase{"zero_assoc",
                      [](SystemConfig &c) { c.l2.assoc = 0; }},
        BadConfigCase{"cache_smaller_than_one_set",
                      [](SystemConfig &c) { c.l1d.size_bytes = 256; }},
        BadConfigCase{"non_pow2_sets",
                      [](SystemConfig &c) {
                          c.l3.size_bytes = 3 * 64 * 1024;
                      }},
        BadConfigCase{"zero_mshrs",
                      [](SystemConfig &c) { c.l1d.mshrs = 0; }},
        BadConfigCase{"zero_cache_ports",
                      [](SystemConfig &c) { c.l1d.ports = 0; }},
        BadConfigCase{"zero_cache_latency",
                      [](SystemConfig &c) { c.l2.latency = 0; }},
        BadConfigCase{"zero_dram_latency",
                      [](SystemConfig &c) { c.dram.latency = 0; }},
        BadConfigCase{"nonpositive_dram_bw",
                      [](SystemConfig &c) {
                          c.dram.bytes_per_cycle = 0.0;
                      }},
        BadConfigCase{"zero_dram_channels",
                      [](SystemConfig &c) { c.dram.channels = 0; }},
        BadConfigCase{"enabled_stride_pf_no_streams",
                      [](SystemConfig &c) { c.stride_pf.streams = 0; }},
        BadConfigCase{"imp_without_table",
                      [](SystemConfig &c) {
                          c.technique = Technique::Imp;
                          c.imp.table_entries = 0;
                      }},
        BadConfigCase{"zero_lanes_per_vector",
                      [](SystemConfig &c) {
                          c.runahead.lanes_per_vector = 0;
                      }},
        BadConfigCase{"zero_vector_regs",
                      [](SystemConfig &c) {
                          c.runahead.vector_regs = 0;
                      }},
        BadConfigCase{"lanes_above_structural_limit",
                      [](SystemConfig &c) {
                          c.runahead.vector_regs = 1024;
                          c.runahead.max_budget_bytes = 0;
                      }},
        BadConfigCase{"zero_stride_entries",
                      [](SystemConfig &c) {
                          c.runahead.stride_entries = 0;
                      }},
        BadConfigCase{"zero_discovery_cap",
                      [](SystemConfig &c) {
                          c.runahead.discovery_max_insts = 0;
                      }},
        BadConfigCase{"zero_subthread_timeout",
                      [](SystemConfig &c) {
                          c.runahead.subthread_timeout = 0;
                      }},
        BadConfigCase{"zero_reconv_stack",
                      [](SystemConfig &c) {
                          c.runahead.reconv_stack_entries = 0;
                      }},
        BadConfigCase{"zero_frontend_buffer",
                      [](SystemConfig &c) {
                          c.runahead.frontend_buffer_uops = 0;
                      }},
        BadConfigCase{"zero_pre_chain_cap",
                      [](SystemConfig &c) {
                          c.runahead.pre_chain_cap = 0;
                      }},
        BadConfigCase{"hardware_budget_exceeded",
                      [](SystemConfig &c) {
                          c.runahead.max_budget_bytes = 64;
                      }}),
    [](const ::testing::TestParamInfo<BadConfigCase> &info) {
        return std::string(info.param.name);
    });

TEST(ConfigValidateTest, BudgetCeilingCanBeDisabled)
{
    // A 64-byte ceiling rejects the default geometry (see the matrix
    // case above); 0 must disable the check entirely, not act as an
    // even tighter ceiling.
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.runahead.max_budget_bytes = 0;
    EXPECT_NO_THROW(cfg.validate(false));
}

TEST(ConfigValidateTest, PaperGeometryFitsDefaultBudgetCeiling)
{
    // The 256-lane §6.1 design point must also fit under the default
    // ceiling; only runaway geometries get rejected.
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.runahead.vector_regs = 32;  // 32 x 8 = 256 lanes
    EXPECT_NO_THROW(cfg.validate(false));
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for the system configuration (Table 1 defaults, technique
 * names, bench scaling, printing).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.hh"

namespace vrsim
{
namespace
{

TEST(ConfigTest, PaperDefaultsMatchTable1)
{
    SystemConfig cfg = SystemConfig::paper();
    EXPECT_EQ(cfg.core.width, 5u);
    EXPECT_EQ(cfg.core.rob_size, 350u);
    EXPECT_EQ(cfg.core.issue_queue, 128u);
    EXPECT_EQ(cfg.core.load_queue, 128u);
    EXPECT_EQ(cfg.core.store_queue, 72u);
    EXPECT_EQ(cfg.core.frontend_stages, 15u);
    EXPECT_EQ(cfg.l1d.size_bytes, 32u * 1024);
    EXPECT_EQ(cfg.l1d.assoc, 8u);
    EXPECT_EQ(cfg.l1d.latency, 4u);
    EXPECT_EQ(cfg.l1d.mshrs, 24u);
    EXPECT_EQ(cfg.l2.size_bytes, 256u * 1024);
    EXPECT_EQ(cfg.l3.size_bytes, 8u * 1024 * 1024);
    EXPECT_EQ(cfg.l3.assoc, 16u);
    EXPECT_EQ(cfg.l3.latency, 30u);
    EXPECT_EQ(cfg.dram.latency, 200u);   // 50 ns at 4 GHz
    EXPECT_DOUBLE_EQ(cfg.dram.bytes_per_cycle, 12.8);
    EXPECT_EQ(cfg.core.int_phys_regs, 256u);
    EXPECT_EQ(cfg.core.vec_phys_regs, 128u);
}

TEST(ConfigTest, RunaheadDefaultsMatchPaper)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.runahead.stride_entries, 32u);
    EXPECT_EQ(cfg.runahead.vector_regs, 16u);
    EXPECT_EQ(cfg.runahead.lanes_per_vector, 8u);
    EXPECT_EQ(cfg.runahead.max_lanes(), 128u);
    EXPECT_EQ(cfg.runahead.subthread_timeout, 200u);
    EXPECT_EQ(cfg.runahead.nested_trigger_lanes, 64u);
    EXPECT_EQ(cfg.runahead.reconv_stack_entries, 8u);
    EXPECT_EQ(cfg.runahead.frontend_buffer_uops, 8u);
}

TEST(ConfigTest, BenchScaleShrinksLlcOnly)
{
    SystemConfig p = SystemConfig::paper();
    SystemConfig b = SystemConfig::benchScale();
    EXPECT_LT(b.l3.size_bytes, p.l3.size_bytes);
    EXPECT_EQ(b.l1d.size_bytes, p.l1d.size_bytes);
    EXPECT_EQ(b.core.rob_size, p.core.rob_size);
}

TEST(ConfigTest, TechniqueNames)
{
    EXPECT_EQ(techniqueName(Technique::OoO), "OoO");
    EXPECT_EQ(techniqueName(Technique::Pre), "PRE");
    EXPECT_EQ(techniqueName(Technique::Imp), "IMP");
    EXPECT_EQ(techniqueName(Technique::Vr), "VR");
    EXPECT_EQ(techniqueName(Technique::Dvr), "DVR");
    EXPECT_EQ(techniqueName(Technique::Oracle), "Oracle");
}

TEST(ConfigTest, PrintConfigMentionsKeyStructures)
{
    std::ostringstream os;
    printConfig(os, SystemConfig::paper());
    EXPECT_NE(os.str().find("ROB 350"), std::string::npos);
    EXPECT_NE(os.str().find("24 MSHRs"), std::string::npos);
    EXPECT_NE(os.str().find("technique"), std::string::npos);
}

} // namespace
} // namespace vrsim

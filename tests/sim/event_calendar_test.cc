/**
 * @file
 * Tests for the event-driven cycle-skipping calendar
 * (sim/event_calendar.hh) and its IntervalResource facade: the skip
 * structure must return bit-identical placements to the linear
 * reference scan in every mode, an all-stalled backlog must be
 * jumped rather than polled (the probe-count bound), and horizon
 * retirement must free history exactly and trap allocations below
 * the horizon.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/interval_resource.hh"
#include "sim/event_calendar.hh"

namespace vrsim
{
namespace
{

/** Restore the process-wide skip mode when a test scope ends. */
struct SkipMode
{
    explicit SkipMode(bool on) { EventCalendar::setSkipEnabled(on); }
    ~SkipMode() { EventCalendar::setSkipEnabled(true); }
};

/** Deterministic allocation workload shared by the mode-equivalence
 *  tests: bursts at a crawling base cycle, with far-future and
 *  far-past reservations interleaved (the non-chronological pattern
 *  the runahead engines produce). */
std::vector<std::pair<Cycle, Cycle>>
mixedSequence(size_t n)
{
    std::vector<std::pair<Cycle, Cycle>> seq;
    uint64_t s = 0x9E3779B97F4A7C15ull;
    Cycle base = 0;
    for (size_t i = 0; i < n; i++) {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        base += s % 3;                       // crawling dispatch point
        Cycle earliest = base + s % 4096;    // some far ahead
        Cycle duration = 1 + (s >> 8) % 40;
        seq.emplace_back(earliest, duration);
    }
    return seq;
}

TEST(EventCalendarTest, SkipMatchesLinearReferencePlacements)
{
    for (uint32_t shift : {0u, 3u}) {
        for (uint32_t cap : {1u, 2u, 8u}) {
            auto seq = mixedSequence(3000);
            std::vector<Cycle> lin, skp;
            {
                SkipMode m(false);
                IntervalResource r(cap, shift);
                for (auto [e, d] : seq)
                    lin.push_back(r.allocate(e, d));
            }
            {
                SkipMode m(true);
                IntervalResource r(cap, shift);
                for (auto [e, d] : seq)
                    skp.push_back(r.allocate(e, d));
            }
            ASSERT_EQ(lin, skp) << "cap=" << cap << " shift=" << shift;
        }
    }
}

TEST(EventCalendarTest, ModeResolvedAtConstruction)
{
    SkipMode m(false);
    IntervalResource linear(1, 0);
    EventCalendar::setSkipEnabled(true);
    IntervalResource skipping(1, 0);
    linear.allocate(0, 1);
    skipping.allocate(0, 1);
    // Identical placements either way; only the probe accounting
    // reveals the mode, and each instance keeps the mode it was
    // built with.
    EXPECT_EQ(linear.allocate(0, 1), 1u);
    EXPECT_EQ(skipping.allocate(0, 1), 1u);
}

TEST(EventCalendarTest, AllStalledBacklogIsSkippedNotPolled)
{
    // The tentpole regression guard: with every bucket up to the
    // backlog tail full, a linear scan pays O(backlog) probes per
    // allocation (quadratic overall); the skip structure must stay
    // near-constant per allocation. 2000 capacity-1 reservations
    // from the same start cycle model a fully-stalled window backed
    // up behind one resource.
    const int N = 2000;
    uint64_t probes_linear, probes_skip;
    {
        SkipMode m(false);
        IntervalResource r(1, 0);
        for (int i = 0; i < N; i++)
            r.allocate(0, 1);
        probes_linear = r.probes();
    }
    {
        SkipMode m(true);
        IntervalResource r(1, 0);
        for (int i = 0; i < N; i++)
            r.allocate(0, 1);
        probes_skip = r.probes();
        EXPECT_GT(r.skips(), 0u);
    }
    // Linear: sum_i i probes ~ N^2/2. Skip: O(1) amortized per
    // allocation (union-find path compression).
    EXPECT_GE(probes_linear, uint64_t(N) * N / 4);
    EXPECT_LE(probes_skip, uint64_t(N) * 8);
    EXPECT_LT(probes_skip * 50, probes_linear);
}

TEST(EventCalendarTest, RetireBeforeFreesAndTraps)
{
    EventCalendar cal(1);
    cal.fill(0, 10);
    cal.fill(100000, 100001);
    EXPECT_EQ(cal.at(5), 1u);
    // Retire everything below bucket 100000 (whole chunks only).
    cal.retireBefore(100000);
    EXPECT_EQ(cal.at(5), 0u);          // history gone, reads as free
    EXPECT_EQ(cal.at(100000), 1u);     // live chunk untouched
    // Allocating below the horizon is a contract violation, not a
    // silent mis-timing.
    EXPECT_THROW(cal.nextFree(5), PanicError);
    EXPECT_THROW(cal.fill(5, 6), PanicError);
    // At/above the horizon still works.
    EXPECT_EQ(cal.nextFree(100000), 100002u);
}

TEST(EventCalendarTest, RetireIsPlacementNeutralAboveHorizon)
{
    // Same allocation stream with and without interleaved retirement
    // must place identically at/above the horizon.
    auto run = [](bool retire) {
        IntervalResource r(2, 0);
        std::vector<Cycle> got;
        for (int i = 0; i < 500; i++) {
            Cycle base = Cycle(i) * 40;
            got.push_back(r.allocate(base + 7, 25));
            got.push_back(r.allocate(base, 13));
            if (retire && i % 50 == 0 && base > 9000)
                r.retireBefore(base - 9000);
        }
        return got;
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(EventCalendarTest, ChunkBoundarySpansAreExact)
{
    // Reservations straddling chunk boundaries must behave exactly
    // like mid-chunk ones.
    const Cycle B = EventCalendar::CHUNK_SIZE;  // first boundary
    IntervalResource r(1, 0);
    EXPECT_EQ(r.allocate(B - 3, 6), B - 3);     // straddles
    EXPECT_EQ(r.allocate(B - 3, 6), B + 3);     // pushed past it
    EXPECT_EQ(r.busyAt(B - 1), 1u);
    EXPECT_EQ(r.busyAt(B + 3), 1u);
}

TEST(EventCalendarTest, EnvDefaultIsSkipping)
{
    // Unless VRSIM_CYCLE_SKIP=0 is exported (the documented linear
    // fallback), calendars skip.
    SkipMode m(true);
    EventCalendar cal(1);
    EXPECT_TRUE(cal.skipping());
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for the shared strict numeric parser used by CLI flags and
 * VRSIM_* environment knobs: garbage must fail loudly, never parse
 * as zero (which would flip instruction budgets into unlimited mode).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/logging.hh"
#include "sim/parse.hh"

namespace vrsim
{
namespace
{

TEST(ParseTest, AcceptsPlainHexAndOctalIntegers)
{
    EXPECT_EQ(parseU64("--roi", "0"), 0u);
    EXPECT_EQ(parseU64("--roi", "150000"), 150000u);
    EXPECT_EQ(parseU64("--roi", "0x20"), 0x20u);
    EXPECT_EQ(parseU64("--roi", "010"), 8u);
    EXPECT_EQ(parseU64("--roi", "18446744073709551615"), UINT64_MAX);
}

TEST(ParseTest, RejectsGarbageTrailingJunkAndNegatives)
{
    EXPECT_THROW(parseU64("--roi", "garbage"), FatalError);
    EXPECT_THROW(parseU64("--roi", ""), FatalError);
    EXPECT_THROW(parseU64("--roi", "12x"), FatalError);
    EXPECT_THROW(parseU64("--roi", "1.5"), FatalError);
    EXPECT_THROW(parseU64("--roi", "-1"), FatalError);
    EXPECT_THROW(parseU64("--roi", "99999999999999999999999"),
                 FatalError);
}

TEST(ParseTest, DiagnosticNamesTheFlag)
{
    try {
        parseU64("VRSIM_ROI", "nope");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("VRSIM_ROI"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("nope"),
                  std::string::npos);
    }
}

TEST(ParseTest, U32RangeChecked)
{
    EXPECT_EQ(parseU32("--rob", "4294967295"), UINT32_MAX);
    EXPECT_THROW(parseU32("--rob", "4294967296"), FatalError);
}

TEST(ParseTest, EnvU64DefaultsWhenUnsetAndRejectsTypos)
{
    unsetenv("VRSIM_PARSE_TEST");
    EXPECT_EQ(envU64("VRSIM_PARSE_TEST", 42), 42u);
    setenv("VRSIM_PARSE_TEST", "7", 1);
    EXPECT_EQ(envU64("VRSIM_PARSE_TEST", 42), 7u);
    setenv("VRSIM_PARSE_TEST", "7even", 1);
    EXPECT_THROW(envU64("VRSIM_PARSE_TEST", 42), FatalError);
    unsetenv("VRSIM_PARSE_TEST");
}

} // namespace
} // namespace vrsim
